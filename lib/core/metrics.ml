module Engine = Dsim.Engine

type view = {
  n : int;
  clock_of : int -> float;
  lmax_of : int -> float;
  iter_edges : (int -> int -> unit) -> unit;
}

let fold_clocks view f init =
  let acc = ref init in
  for i = 0 to view.n - 1 do
    acc := f !acc (view.clock_of i)
  done;
  !acc

let global_skew view =
  let max_l = fold_clocks view Float.max neg_infinity in
  let min_l = fold_clocks view Float.min infinity in
  max_l -. min_l

let edge_skew view u v = Float.abs (view.clock_of u -. view.clock_of v)

let local_skew view =
  let worst = ref 0. in
  view.iter_edges (fun u v -> worst := Float.max !worst (edge_skew view u v));
  !worst

let lmax_lag view =
  let best = ref neg_infinity and worst = ref infinity in
  for i = 0 to view.n - 1 do
    let m = view.lmax_of i in
    if m > !best then best := m;
    if m < !worst then worst := m
  done;
  !best -. !worst

let clock_lag view =
  let lag = ref 0. in
  for i = 0 to view.n - 1 do
    lag := Float.max !lag (view.lmax_of i -. view.clock_of i)
  done;
  !lag

type sample = {
  time : float;
  global_skew : float;
  local_skew : float;
  lmax_lag : float;
  clock_lag : float;
  events : int;
}

(* Watched pairs live in parallel arrays, not a pair-packed-int Hashtbl:
   packing (u, v) as [u * n + v] collides (and mis-decodes) once node ids
   reach or exceed the n the recorder was attached at — exactly what
   happens when nodes join mid-run. The watch list is tiny and scanned
   linearly per sample anyway. *)
type recorder = {
  mutable samples : sample list; (* newest first *)
  w_u : int array; (* normalized u < v, deduplicated *)
  w_v : int array;
  w_traces : (float * float) list ref array;
}

let probe engine view recorder () =
  let time = Engine.now engine in
  recorder.samples <-
    {
      time;
      global_skew = global_skew view;
      local_skew = local_skew view;
      lmax_lag = lmax_lag view;
      clock_lag = clock_lag view;
      events = Engine.events_processed engine;
    }
    :: recorder.samples;
  for i = 0 to Array.length recorder.w_u - 1 do
    let trace = recorder.w_traces.(i) in
    trace := (time, edge_skew view recorder.w_u.(i) recorder.w_v.(i)) :: !trace
  done

let attach engine view ~every ~until ?(watch = []) () =
  if every <= 0. then invalid_arg "Metrics.attach: sampling period must be positive";
  let watch =
    List.sort_uniq compare (List.map (fun (u, v) -> Dsim.Dyngraph.normalize u v) watch)
  in
  let recorder =
    {
      samples = [];
      w_u = Array.of_list (List.map fst watch);
      w_v = Array.of_list (List.map snd watch);
      w_traces = Array.of_list (List.map (fun _ -> ref []) watch);
    }
  in
  let rec schedule time =
    if time <= until then
      Engine.at engine ~time (fun () ->
          probe engine view recorder ();
          schedule (time +. every))
  in
  schedule (Engine.now engine);
  recorder

let samples recorder = List.rev recorder.samples

let pair_trace recorder (u, v) =
  let u, v = Dsim.Dyngraph.normalize u v in
  let rec scan i =
    if i >= Array.length recorder.w_u then []
    else if recorder.w_u.(i) = u && recorder.w_v.(i) = v then
      List.rev !(recorder.w_traces.(i))
    else scan (i + 1)
  in
  scan 0

let recovery_time ~after ~bound samples =
  (* First sample time t >= after such that every sample from t onward has
     global_skew <= bound; the recovery time is t - after. Walking the
     time-sorted list backwards keeps this O(|samples|). *)
  let rec scan best = function
    | [] -> best
    | s :: earlier ->
      if s.time < after then best
      else if s.global_skew <= bound then scan (Some s.time) earlier
      else best (* a violation ends the maximal in-bound suffix *)
  in
  match scan None (List.rev samples) with
  | None -> None
  | Some t -> Some (Float.max 0. (t -. after))

let max_global_skew recorder =
  List.fold_left (fun acc s -> Float.max acc s.global_skew) 0. recorder.samples

let max_local_skew recorder =
  List.fold_left (fun acc s -> Float.max acc s.local_skew) 0. recorder.samples
