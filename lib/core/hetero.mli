(** Heterogeneous link delays — the weighted-graph extension sketched in
    Section 7 and developed in the companion paper (Kuhn & Oshman,
    "Gradient clock synchronization using reference broadcasts", reference
    [9]).

    Each link [e = {u, v}] has its own delay bound [T_e <= T] (its
    {e uncertainty}); the global parameters still use the worst-case [T],
    but a node scales its per-peer staleness bound, timeout and tolerance
    to the link:

    - [ΔT_e = T_e + ΔH/(1-rho)] and [ΔT'_e = (1+rho) ΔT_e];
    - [τ_e = (1+rho)/(1-rho) ΔT_e + T_e + D];
    - [B0_e = B0 · τ_e / τ] (so the admissibility ratio
      [B0_e / ((1+rho) τ_e) = B0 / ((1+rho) τ) > 2] is preserved on every
      link);
    - [B_e(Δt) = max{B0_e, 5 G(n) + (1+rho) τ_e + B0_e - B0_e·Δt/((1+rho) τ_e)}].

    Tight links therefore converge to a proportionally tighter stable
    skew — the per-edge weight is the link's uncertainty, which is the
    gradient property refined from hop distance to weighted distance. *)

type link_bound = int -> int -> float
(** [bound u v] is [T_e] for the (normalized) link; must lie in
    [(0, params.delay_bound]]. Must be symmetric. *)

val uniform_bounds : Params.t -> link_bound
(** Every link at the global bound — degenerates to the plain algorithm. *)

val of_alist : default:float -> ((int * int) * float) list -> link_bound

(** {1 Per-link derived quantities} *)

val delta_t_e : Params.t -> t_e:float -> float

val timeout_e : Params.t -> t_e:float -> float
(** [ΔT'_e], the subjective silence tolerated before dropping the peer. *)

val tau_e : Params.t -> t_e:float -> float

val b0_e : Params.t -> t_e:float -> float

val b_e : Params.t -> t_e:float -> float -> float
(** [b_e params ~t_e age] — the per-link tolerance function. *)

val stable_local_skew_e : Params.t -> t_e:float -> float
(** [B0_e + 2 rho W] — what the link converges to. *)

(** {1 Node and simulation assembly} *)

val node : Params.t -> link_bound:link_bound -> Proto.ctx -> Node.t
(** Algorithm 2 with per-peer tolerance [B_e] and timeout [ΔT'_e]. *)

val delay_policy :
  Dsim.Prng.t -> Params.t -> link_bound:link_bound -> Dsim.Delay.t
(** Message delays uniform in [\[0, T_e\]] per link (global bound [T]). *)

val create_sim :
  ?discovery_lag:float ->
  params:Params.t ->
  clocks:Dsim.Hwclock.t array ->
  delay:Dsim.Delay.t ->
  link_bound:link_bound ->
  initial_edges:(int * int) list ->
  unit ->
  (Proto.message, Proto.timer) Dsim.Engine.t * Node.t array
(** A full simulation of heterogeneous-link nodes; returns the engine and
    the node states. Validation mirrors {!Sim.config}. *)

val view : Node.t array -> ((int -> int -> unit) -> unit) -> Metrics.view
(** A metrics view over heterogeneous nodes. *)
