(** Runtime validity monitors for the logical-clock requirements of
    Section 3.3 and Property 6.3.

    Between consecutive probes at times [t1 < t2] every node must satisfy:
    - monotonicity / minimum rate: [L(t2) - L(t1) >= rate_floor (t2 - t1)].
      Logical clocks advance at the hardware rate, never slower, so the
      algorithm guarantees a floor of [1 - rho]; that is the default,
      derived from [Params]. (The paper's validity condition only asks
      for [1/2] — pass [~rate_floor:0.5] to check the weaker bound.)
    - maximum estimate dominance: [Lmax(t) >= L(t)].

    Comparison slack is relative to the magnitudes involved (clock value
    and probe gap), so long horizons neither mask real deficits nor turn
    float accumulation into spurious violations. *)

type violation = { time : float; node : int; kind : string; detail : string }

type checker
(** The engine-independent core: a sequence of probe observations checked
    against the rules above. {!attach} drives one from engine callbacks;
    the bounded model explorer drives one directly at its choice points.
    Both paths run the identical rule code. *)

type monitor = checker

val checker :
  n:int ->
  params:Params.t ->
  ?rate_floor:float ->
  ?faults:Dsim.Fault.schedule ->
  unit ->
  checker
(** A fresh checker over [n] nodes. [rate_floor] defaults to
    [1 - params.rho]; [faults] (default none) must match the schedule the
    observed execution runs under. *)

val observe :
  checker -> time:float -> l:(int -> float) -> lmax:(int -> float) -> unit
(** Feed one probe: the clock accessors are sampled for every node alive
    at [time]. Observation times must be non-decreasing. *)

val observe_view : checker -> Metrics.view -> time:float -> unit
(** {!observe} with the accessors of a metrics view. *)

val attach :
  (Proto.message, Proto.timer) Dsim.Engine.t ->
  Metrics.view ->
  params:Params.t ->
  every:float ->
  until:float ->
  ?rate_floor:float ->
  ?faults:Dsim.Fault.schedule ->
  unit ->
  monitor
(** [rate_floor] defaults to [1 - params.rho]. With [faults], crashed
    nodes are skipped and the min-rate window is suspended across any
    crash or restart discontinuity (state loss / corruption legitimately
    moves [L] backwards). *)

val violations : monitor -> violation list

val ok : monitor -> bool

val probes : monitor -> int

val pp_violation : Format.formatter -> violation -> unit
