(** Runtime validity monitors for the logical-clock requirements of
    Section 3.3 and Property 6.3.

    Between consecutive probes at times [t1 < t2] every node must satisfy:
    - monotonicity / minimum rate: [L(t2) - L(t1) >= rate_floor (t2 - t1)].
      Logical clocks advance at the hardware rate, never slower, so the
      algorithm guarantees a floor of [1 - rho]; that is the default,
      derived from [Params]. (The paper's validity condition only asks
      for [1/2] — pass [~rate_floor:0.5] to check the weaker bound.)
    - maximum estimate dominance: [Lmax(t) >= L(t)].

    Comparison slack is relative to the magnitudes involved (clock value
    and probe gap), so long horizons neither mask real deficits nor turn
    float accumulation into spurious violations. *)

type violation = { time : float; node : int; kind : string; detail : string }

type monitor

val attach :
  (Proto.message, Proto.timer) Dsim.Engine.t ->
  Metrics.view ->
  params:Params.t ->
  every:float ->
  until:float ->
  ?rate_floor:float ->
  ?faults:Dsim.Fault.schedule ->
  unit ->
  monitor
(** [rate_floor] defaults to [1 - params.rho]. With [faults], crashed
    nodes are skipped and the min-rate window is suspended across any
    crash or restart discontinuity (state loss / corruption legitimately
    moves [L] backwards). *)

val violations : monitor -> violation list

val ok : monitor -> bool

val probes : monitor -> int

val pp_violation : Format.formatter -> violation -> unit
