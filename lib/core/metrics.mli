(** Skew measurement: instantaneous queries over a node-state view and a
    periodic recorder that samples an execution while it runs.

    A {!view} abstracts over which algorithm is running: it exposes each
    node's logical clock and max-estimate plus the live edge set. *)

type view = {
  n : int;
  clock_of : int -> float;      (** logical clock [L_u] now *)
  lmax_of : int -> float;       (** max estimate [Lmax_u] now *)
  iter_edges : (int -> int -> unit) -> unit;
      (** iterate over edges present now, without allocating *)
}

val global_skew : view -> float
(** [max_u L_u - min_u L_u] (Definition 3.2 over all pairs). *)

val local_skew : view -> float
(** Maximum [|L_u - L_v|] over currently present edges (0 if none). *)

val edge_skew : view -> int -> int -> float
(** [|L_u - L_v|] for the given pair (present or not). *)

val lmax_lag : view -> float
(** [max_u (max_v Lmax_v - Lmax_u)]: how far the worst-informed node's max
    estimate trails the best (Lemma 6.8's quantity). *)

val clock_lag : view -> float
(** [max_u (Lmax_u - L_u)]: how far any node trails its own max estimate;
    spikes while nodes are blocked. *)

type sample = {
  time : float;
  global_skew : float;
  local_skew : float;
  lmax_lag : float;
  clock_lag : float;
  events : int;  (** engine events processed up to this sample *)
}

type recorder

val attach :
  (Proto.message, Proto.timer) Dsim.Engine.t ->
  view ->
  every:float ->
  until:float ->
  ?watch:(int * int) list ->
  unit ->
  recorder
(** Schedule periodic probes on the engine from its current time to
    [until]. [watch] lists node pairs whose pairwise skew is traced at
    every probe (whether or not an edge is present). *)

val samples : recorder -> sample list
(** Chronological samples taken so far. *)

val pair_trace : recorder -> int * int -> (float * float) list
(** Chronological [(time, skew)] trace of a watched pair. *)

val max_global_skew : recorder -> float

val max_local_skew : recorder -> float

val recovery_time : after:float -> bound:float -> sample list -> float option
(** [recovery_time ~after ~bound samples] is the self-stabilization
    metric: the earliest sampled time [t >= after] such that every sample
    from [t] onward has [global_skew <= bound], reported as [t -. after].
    [None] if the run never (re-)enters the envelope for good, or has no
    samples at or after [after]. [samples] must be chronological (as
    returned by {!samples}). *)
